//! Table 2 — configuration of the simulated machine (the reproduction's
//! `MachineConfig` defaults versus the paper's MARSSx86/ASF setup).

use htm_sim::MachineConfig;
use stagger_bench::{CommonOpts, Report};

fn main() {
    // Table 2 is static (no simulator runs), but it accepts the common
    // harness flags so every exhibit has a uniform command line; --json
    // still writes a (zero-run) results/BENCH_table2.json.
    let opts = CommonOpts::from_args();
    let report = Report::new("table2", &opts);
    let c = MachineConfig::default();
    println!("Table 2: HTM simulator configuration");
    println!("{}", "-".repeat(74));
    let rows: Vec<(&str, String, &str)> = vec![
        (
            "CPU cores",
            format!("{} cores, in-order cost model", c.n_cores),
            "2.5GHz, 4-wide out-of-order",
        ),
        (
            "L1 cache",
            format!(
                "private, {} KB, {}-way, 64-byte line, {}-cycle",
                c.l1_sets * c.l1_ways * 64 / 1024,
                c.l1_ways,
                c.l1_latency
            ),
            "private, 64K D, 8-way, 64-byte line, 2-cycle",
        ),
        (
            "L2 cache",
            format!(
                "private, {} MB, {}-way, {}-cycle",
                c.l2_sets * c.l2_ways * 64 / (1024 * 1024),
                c.l2_ways,
                c.l2_latency
            ),
            "private, 1M, 8-way, 10-cycle",
        ),
        (
            "L3 cache",
            format!(
                "shared, {} MB, {}-way, {}-cycle",
                c.l3_sets * c.l3_ways * 64 / (1024 * 1024),
                c.l3_ways,
                c.l3_latency
            ),
            "shared, 8M, 8-way, 30-cycle",
        ),
        (
            "Memory",
            format!(
                "{} MB simulated, {}-cycle (50ns)",
                c.mem_words * 8 / (1024 * 1024),
                c.mem_latency
            ),
            "4 GB, 50ns",
        ),
        (
            "HTM",
            "2-bit (r/w) per L1 line, eager requester-wins".to_string(),
            "2-bit (r/w) per L1 line, eager requester-wins",
        ),
        (
            "Stag. Trans.",
            format!("{}-bit PC tag per L1 line", c.pc_tag_bits),
            "12-bit PC tag per L1 cache line",
        ),
        (
            "Abort cost",
            format!("{} cycles + written-line invalidation", c.tx_abort_cost),
            "(implicit in the OoO pipeline model)",
        ),
    ];
    for (what, ours, theirs) in rows {
        println!("{what:<14} {ours}");
        println!("{:<14}   (paper: {theirs})", "");
    }
    if opts.json {
        report.finish();
    }
}
