//! Figure 8 — (a) aborts per commit and (b) wasted-over-useful cycles,
//! baseline HTM vs full Staggered Transactions, 16 threads; plus the
//! paper's headline reductions.

use stagger_bench::{paper, prepare_all, workload_set, CommonOpts, Report};
use stagger_core::Mode;

fn main() {
    let opts = CommonOpts::from_args();
    let report = Report::new("fig8", &opts);
    println!(
        "Figure 8: contention and wasted work, {} threads{}",
        opts.threads,
        if opts.quick { " (quick)" } else { "" }
    );
    let header = format!(
        "{:<10} | {:>9} {:>10} {:>8} | {:>8} {:>9} {:>8}",
        "benchmark", "abts/c", "stag", "cut", "W/U", "stag", "cut"
    );
    println!("{header}");
    stagger_bench::rule(&header);

    let set = workload_set(opts.quick);
    let prepared = prepare_all(&set, opts.jobs);

    let seqs = report.pool(
        prepared
            .iter()
            .map(|p| {
                let report = &report;
                move || report.run_sequential(p, opts.seed)
            })
            .collect(),
    );
    // One job per (workload, mode): baseline HTM and full Staggered.
    const MODES: [Mode; 2] = [Mode::Htm, Mode::Staggered];
    let measured = report.pool(
        prepared
            .iter()
            .zip(&seqs)
            .flat_map(|(p, seq)| {
                MODES.map(|mode| {
                    let report = &report;
                    move || report.measure(p, mode, opts.threads, opts.seed, seq, None)
                })
            })
            .collect(),
    );

    let mut abort_cuts = Vec::new();
    let mut waste_cuts = Vec::new();
    let mut max_cut: (f64, &str) = (0.0, "");
    for (w, row) in set.iter().zip(measured.chunks(MODES.len())) {
        let (base, stag) = (&row[0], &row[1]);
        let abort_cut = if base.aborts_per_commit > 0.0 {
            1.0 - stag.aborts_per_commit / base.aborts_per_commit
        } else {
            0.0
        };
        let waste_cut = if base.wasted_over_useful > 0.0 {
            1.0 - stag.wasted_over_useful / base.wasted_over_useful
        } else {
            0.0
        };
        // The paper excludes ssca2 from the average (too few aborts).
        if w.name() != "ssca2" {
            abort_cuts.push(abort_cut);
            waste_cuts.push(waste_cut);
            if abort_cut > max_cut.0 {
                max_cut = (abort_cut, w.name());
            }
        }
        println!(
            "{:<10} | {:>9.2} {:>10.2} {:>7.0}% | {:>8.2} {:>9.2} {:>7.0}%",
            w.name(),
            base.aborts_per_commit,
            stag.aborts_per_commit,
            abort_cut * 100.0,
            base.wasted_over_useful,
            stag.wasted_over_useful,
            waste_cut * 100.0,
        );
    }
    let avg_abort = abort_cuts.iter().sum::<f64>() / abort_cuts.len() as f64;
    let avg_waste = waste_cuts.iter().sum::<f64>() / waste_cuts.len() as f64;
    println!();
    println!(
        "max abort reduction: {:.0}% in {} (paper: {:.0}% in intruder)",
        max_cut.0 * 100.0,
        max_cut.1,
        paper::FIG8_MAX_ABORT_REDUCTION * 100.0
    );
    println!(
        "average abort reduction (excl. ssca2): {:.0}% (paper: {:.0}%)",
        avg_abort * 100.0,
        paper::FIG8_AVG_ABORT_REDUCTION * 100.0
    );
    println!(
        "average wasted-cycle reduction: {:.0}% (paper: {:.0}%)",
        avg_waste * 100.0,
        paper::FIG8_AVG_WASTE_REDUCTION * 100.0
    );
    report.finish();
}
