//! Ablation studies for the design choices DESIGN.md calls out, plus the
//! paper's future-work directions:
//!
//! 1. **Conflict-resolution protocol** — eager vs. lazy HTM ("we also plan
//!    to extend our simulations to lazy TM protocols", Section 8; the
//!    mechanism "should be compatible with most conflict resolution
//!    techniques", Section 1).
//! 2. **PC-tag width** — the paper argues 12 bits suffice (Section 4);
//!    sweep the width and watch anchor-identification accuracy degrade as
//!    tags alias.
//! 3. **Advisory-lock timeout** — the liveness escape of Section 2.
//! 4. **Thread scaling** — speedup curves for a contended and an
//!    uncontended benchmark.
//!
//! Run with: `cargo run -p stagger-bench --release --bin ablations`
//!
//! Each workload is compiled once and shared across sections; each
//! section's runs go through the parallel job runner.

use htm_sim::{HtmProtocol, MachineConfig};
use stagger_bench::{run_jobs, CommonOpts, Report};
use stagger_core::{Mode, RuntimeConfig};
use workloads::PreparedWorkload;

fn main() {
    let opts = CommonOpts::from_args();
    let report = Report::new("ablations", &opts);
    let threads = opts.threads;

    // Compile each distinct workload once, up front (sections share them).
    let kmeans = workloads::kmeans::Kmeans::tiny();
    let list = workloads::list::ListBench::tiny(60, 20);
    let memcached = workloads::memcached::Memcached::tiny();
    let ssca2 = workloads::ssca2::Ssca2::tiny();
    let shared: [&dyn workloads::Workload; 4] = [&kmeans, &list, &memcached, &ssca2];
    let prepared: Vec<PreparedWorkload> = run_jobs(
        shared
            .iter()
            .map(|&w| move || PreparedWorkload::new(w))
            .collect(),
        opts.jobs,
    );
    let (p_kmeans, p_list, p_memcached, p_ssca2) =
        (&prepared[0], &prepared[1], &prepared[2], &prepared[3]);

    // ---- 1. eager vs lazy ------------------------------------------------
    println!("== Ablation 1: conflict-resolution protocol (HTM vs Staggered, {threads} threads)\n");
    println!(
        "{:<10} {:<7} | {:>10} {:>8} | {:>10} {:>8} | {:>7}",
        "benchmark", "proto", "HTM cyc", "abts/c", "Stag cyc", "abts/c", "abt cut"
    );
    let set = [p_kmeans, p_list, p_memcached];
    let cases: Vec<(&PreparedWorkload, HtmProtocol, Mode)> = set
        .iter()
        .flat_map(|&p| {
            [HtmProtocol::Eager, HtmProtocol::Lazy]
                .into_iter()
                .flat_map(move |proto| {
                    [Mode::Htm, Mode::Staggered].map(move |mode| (p, proto, mode))
                })
        })
        .collect();
    let runs = report.pool(
        cases
            .iter()
            .map(|&(p, proto, mode)| {
                let report = &report;
                move || {
                    let mcfg = MachineConfig::cores(threads).protocol(proto);
                    report.run_cfg(p, opts.seed, mcfg, RuntimeConfig::with_mode(mode))
                }
            })
            .collect(),
    );
    for (case, pair) in cases.chunks(2).zip(runs.chunks(2)) {
        let (p, proto) = (case[0].0, case[0].1);
        let (base, stag) = (&pair[0], &pair[1]);
        let b = base.out.sim.aborts_per_commit();
        let s = stag.out.sim.aborts_per_commit();
        let cut = if b > 0.0 { (1.0 - s / b) * 100.0 } else { 0.0 };
        println!(
            "{:<10} {:<7} | {:>10} {:>8.2} | {:>10} {:>8.2} | {:>6.0}%",
            p.name(),
            format!("{proto:?}"),
            base.cycles(),
            b,
            stag.cycles(),
            s,
            cut
        );
    }
    println!("\nStaggered Transactions cut aborts under both protocols — the paper's");
    println!("protocol-independence claim (Section 1) holds.\n");

    // ---- 2. PC-tag width ---------------------------------------------------
    println!("== Ablation 2: conflicting-PC tag width vs identification accuracy\n");
    println!(
        "{:<10} {:>8} {:>12} {:>10}",
        "bits", "aliases", "accuracy", "abts cut"
    );
    const BITS: [u32; 5] = [2, 4, 6, 8, 12];
    // Job 0 is the eager baseline (abort-cut reference); jobs 1.. sweep
    // the tag width under Staggered.
    let mut jobs: Vec<Box<dyn FnOnce() -> workloads::BenchResult + Send>> = Vec::new();
    jobs.push(Box::new(|| {
        report.run_cfg(
            p_memcached,
            opts.seed,
            MachineConfig::cores(threads),
            RuntimeConfig::with_mode(Mode::Htm),
        )
    }));
    for bits in BITS {
        let report = &report;
        jobs.push(Box::new(move || {
            let mcfg = MachineConfig::cores(threads).pc_tag_bits(bits);
            report.run_cfg(
                p_memcached,
                opts.seed,
                mcfg,
                RuntimeConfig::with_mode(Mode::Staggered),
            )
        }));
    }
    let runs = report.pool(jobs);
    let base_abts = runs[0].out.sim.aborts_per_commit();
    for (bits, stag) in BITS.iter().zip(&runs[1..]) {
        let cut = if base_abts > 0.0 {
            (1.0 - stag.out.sim.aborts_per_commit() / base_abts) * 100.0
        } else {
            0.0
        };
        println!(
            "{:<10} {:>8} {:>11.1}% {:>9.0}%",
            bits,
            1u64 << bits,
            stag.out.rt.accuracy() * 100.0,
            cut
        );
    }
    println!("\nNarrow tags alias instructions and misattribute aborts; accuracy and the");
    println!("resulting abort cut recover as the tag widens (the paper picks 12 bits).\n");

    // ---- 3. lock timeout --------------------------------------------------
    println!("== Ablation 3: advisory-lock acquire timeout\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "timeout", "cycles", "abts/c", "timeouts"
    );
    const TIMEOUTS: [u64; 5] = [500, 2_000, 10_000, 50_000, 200_000];
    let runs = report.pool(
        TIMEOUTS
            .map(|timeout| {
                let report = &report;
                move || {
                    let mut rt = RuntimeConfig::with_mode(Mode::Staggered);
                    rt.lock_timeout = timeout;
                    rt.min_conflict_rate = 0.3;
                    report.run_cfg(p_list, opts.seed, MachineConfig::cores(threads), rt)
                }
            })
            .into_iter()
            .collect(),
    );
    for (timeout, r) in TIMEOUTS.iter().zip(&runs) {
        println!(
            "{:<12} {:>10} {:>10.2} {:>10}",
            timeout,
            r.cycles(),
            r.out.sim.aborts_per_commit(),
            r.out.rt.lock_timeouts
        );
    }
    println!("\nVery short timeouts make waiters barge in and conflict with the holder;");
    println!("long timeouts let the advisory protocol serialize cleanly.\n");

    // ---- 4. thread scaling --------------------------------------------------
    println!("== Ablation 4: thread scaling (speedup over 1 thread)\n");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>7}",
        "benchmark", "1", "2", "4", "8", "16"
    );
    const SCALE_THREADS: [usize; 5] = [1, 2, 4, 8, 16];
    let curves: [(&PreparedWorkload, Mode); 3] = [
        (p_ssca2, Mode::Htm),
        (p_kmeans, Mode::Htm),
        (p_kmeans, Mode::Staggered),
    ];
    let runs = report.pool(
        curves
            .iter()
            .flat_map(|&(p, mode)| {
                SCALE_THREADS.map(|t| {
                    let report = &report;
                    move || report.run(p, mode, t, opts.seed)
                })
            })
            .collect(),
    );
    for (&(p, mode), curve) in curves.iter().zip(runs.chunks(SCALE_THREADS.len())) {
        let t1 = &curve[0];
        let mut row = format!("{:<10}", format!("{}/{}", p.name(), mode.name()));
        for r in curve {
            row += &format!(" {:>6.2}", t1.cycles() as f64 / r.cycles() as f64);
        }
        println!("{row}");
    }
    report.finish();
}
