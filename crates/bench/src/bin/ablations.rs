//! Ablation studies for the design choices DESIGN.md calls out, plus the
//! paper's future-work directions:
//!
//! 1. **Conflict-resolution protocol** — eager vs. lazy HTM ("we also plan
//!    to extend our simulations to lazy TM protocols", Section 8; the
//!    mechanism "should be compatible with most conflict resolution
//!    techniques", Section 1).
//! 2. **PC-tag width** — the paper argues 12 bits suffice (Section 4);
//!    sweep the width and watch anchor-identification accuracy degrade as
//!    tags alias.
//! 3. **Advisory-lock timeout** — the liveness escape of Section 2.
//! 4. **Thread scaling** — speedup curves for a contended and an
//!    uncontended benchmark.
//!
//! Run with: `cargo run -p stagger-bench --release --bin ablations`

use htm_sim::{HtmProtocol, MachineConfig};
use stagger_core::{Mode, RuntimeConfig};
use workloads::runner::run_benchmark_cfg;
use workloads::Workload;

fn main() {
    let opts = stagger_bench::Opts::from_args();
    let threads = opts.threads;

    // ---- 1. eager vs lazy ------------------------------------------------
    println!("== Ablation 1: conflict-resolution protocol (HTM vs Staggered, {threads} threads)\n");
    println!(
        "{:<10} {:<7} | {:>10} {:>8} | {:>10} {:>8} | {:>7}",
        "benchmark", "proto", "HTM cyc", "abts/c", "Stag cyc", "abts/c", "abt cut"
    );
    let set: Vec<Box<dyn Workload>> = vec![
        Box::new(workloads::kmeans::Kmeans::tiny()),
        Box::new(workloads::list::ListBench::tiny(60, 20)),
        Box::new(workloads::memcached::Memcached::tiny()),
    ];
    for w in &set {
        for proto in [HtmProtocol::Eager, HtmProtocol::Lazy] {
            let mcfg = MachineConfig {
                protocol: proto,
                ..MachineConfig::with_cores(threads)
            };
            let base = run_benchmark_cfg(
                w.as_ref(),
                opts.seed,
                mcfg.clone(),
                RuntimeConfig::with_mode(Mode::Htm),
            );
            let stag = run_benchmark_cfg(
                w.as_ref(),
                opts.seed,
                mcfg,
                RuntimeConfig::with_mode(Mode::Staggered),
            );
            let b = base.out.sim.aborts_per_commit();
            let s = stag.out.sim.aborts_per_commit();
            let cut = if b > 0.0 { (1.0 - s / b) * 100.0 } else { 0.0 };
            println!(
                "{:<10} {:<7} | {:>10} {:>8.2} | {:>10} {:>8.2} | {:>6.0}%",
                w.name(),
                format!("{proto:?}"),
                base.cycles(),
                b,
                stag.cycles(),
                s,
                cut
            );
        }
    }
    println!("\nStaggered Transactions cut aborts under both protocols — the paper's");
    println!("protocol-independence claim (Section 1) holds.\n");

    // ---- 2. PC-tag width ---------------------------------------------------
    println!("== Ablation 2: conflicting-PC tag width vs identification accuracy\n");
    println!("{:<10} {:>8} {:>12} {:>10}", "bits", "aliases", "accuracy", "abts cut");
    let w = workloads::memcached::Memcached::tiny();
    // Eager baseline for the abort-cut reference.
    let base = run_benchmark_cfg(
        &w,
        opts.seed,
        MachineConfig::with_cores(threads),
        RuntimeConfig::with_mode(Mode::Htm),
    );
    let base_abts = base.out.sim.aborts_per_commit();
    for bits in [2u32, 4, 6, 8, 12] {
        let mcfg = MachineConfig {
            pc_tag_bits: bits,
            ..MachineConfig::with_cores(threads)
        };
        let stag = run_benchmark_cfg(
            &w,
            opts.seed,
            mcfg,
            RuntimeConfig::with_mode(Mode::Staggered),
        );
        let cut = if base_abts > 0.0 {
            (1.0 - stag.out.sim.aborts_per_commit() / base_abts) * 100.0
        } else {
            0.0
        };
        println!(
            "{:<10} {:>8} {:>11.1}% {:>9.0}%",
            bits,
            1u64 << bits,
            stag.out.rt.accuracy() * 100.0,
            cut
        );
    }
    println!("\nNarrow tags alias instructions and misattribute aborts; accuracy and the");
    println!("resulting abort cut recover as the tag widens (the paper picks 12 bits).\n");

    // ---- 3. lock timeout --------------------------------------------------
    println!("== Ablation 3: advisory-lock acquire timeout\n");
    println!("{:<12} {:>10} {:>10} {:>10}", "timeout", "cycles", "abts/c", "timeouts");
    let w = workloads::list::ListBench::tiny(60, 20);
    for timeout in [500u64, 2_000, 10_000, 50_000, 200_000] {
        let mut rt = RuntimeConfig::with_mode(Mode::Staggered);
        rt.lock_timeout = timeout;
        rt.min_conflict_rate = 0.3;
        let r = run_benchmark_cfg(&w, opts.seed, MachineConfig::with_cores(threads), rt);
        println!(
            "{:<12} {:>10} {:>10.2} {:>10}",
            timeout,
            r.cycles(),
            r.out.sim.aborts_per_commit(),
            r.out.rt.lock_timeouts
        );
    }
    println!("\nVery short timeouts make waiters barge in and conflict with the holder;");
    println!("long timeouts let the advisory protocol serialize cleanly.\n");

    // ---- 4. thread scaling --------------------------------------------------
    println!("== Ablation 4: thread scaling (speedup over 1 thread)\n");
    println!("{:<10} {:>6} {:>6} {:>6} {:>6} {:>7}", "benchmark", "1", "2", "4", "8", "16");
    for (w, mode) in [
        (
            Box::new(workloads::ssca2::Ssca2::tiny()) as Box<dyn Workload>,
            Mode::Htm,
        ),
        (
            Box::new(workloads::kmeans::Kmeans::tiny()),
            Mode::Htm,
        ),
        (
            Box::new(workloads::kmeans::Kmeans::tiny()),
            Mode::Staggered,
        ),
    ] {
        let t1 = run_benchmark_cfg(
            w.as_ref(),
            opts.seed,
            MachineConfig::with_cores(1),
            RuntimeConfig::with_mode(mode),
        );
        let mut row = format!("{:<10}", format!("{}/{}", w.name(), mode.name()));
        for t in [1usize, 2, 4, 8, 16] {
            let r = run_benchmark_cfg(
                w.as_ref(),
                opts.seed,
                MachineConfig::with_cores(t),
                RuntimeConfig::with_mode(mode),
            );
            row += &format!(" {:>6.2}", t1.cycles() as f64 / r.cycles() as f64);
        }
        println!("{row}");
    }
}
