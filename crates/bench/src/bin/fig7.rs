//! Figure 7 — performance of HTM / AddrOnly / Staggered+SW / Staggered at
//! 16 threads, normalized to the eager-HTM baseline.

use stagger_bench::{harmonic_mean, measure, paper, run, run_sequential, workload_set, Opts};
use stagger_core::Mode;

fn main() {
    let opts = Opts::from_args();
    println!(
        "Figure 7: speedup normalized to eager HTM, {} threads{}",
        opts.threads,
        if opts.quick { " (quick)" } else { "" }
    );
    let header = format!(
        "{:<10} {:>8} {:>9} {:>13} {:>10}   {:<22}",
        "benchmark", "HTM", "AddrOnly", "Staggered+SW", "Staggered", "paper expectation"
    );
    println!("{header}");
    stagger_bench::rule(&header);

    let mut improvements = Vec::new();
    for w in workload_set(opts.quick) {
        let seq = run_sequential(w.as_ref(), opts.seed);
        let htm = run(w.as_ref(), Mode::Htm, opts.threads, opts.seed);
        let mut norm = Vec::new();
        for mode in [Mode::AddrOnly, Mode::StaggeredSw, Mode::Staggered] {
            let m = measure(w.as_ref(), mode, opts.threads, opts.seed, &seq, Some(&htm));
            norm.push(m.speedup_vs_htm.unwrap());
        }
        let expectation = paper::FIG7
            .iter()
            .find(|r| r.name == w.name())
            .map_or("", |r| r.band);
        println!(
            "{:<10} {:>8.2} {:>9.2} {:>13.2} {:>10.2}   {:<22}",
            w.name(),
            1.0,
            norm[0],
            norm[1],
            norm[2],
            expectation
        );
        improvements.push(norm[2]);
    }
    let hm = harmonic_mean(&improvements);
    println!();
    println!(
        "harmonic mean of Staggered speedups over HTM: {:.2}x (paper: 1.24x)",
        hm
    );
}
