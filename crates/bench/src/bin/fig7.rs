//! Figure 7 — performance of HTM / AddrOnly / Staggered+SW / Staggered at
//! 16 threads, normalized to the eager-HTM baseline.
//!
//! Runs are submitted to the parallel job runner in two waves (references
//! first, then the three instrumented modes against them); rows print in
//! workload order regardless of `--jobs`.

use stagger_bench::{harmonic_mean, paper, CommonOpts, Exhibit};
use stagger_core::Mode;

fn main() {
    let opts = CommonOpts::from_args();
    let ex = Exhibit::new("fig7", &opts);
    ex.banner(&format!(
        "Figure 7: speedup normalized to eager HTM, {} threads",
        opts.threads
    ));
    ex.header(&format!(
        "{:<10} {:>8} {:>9} {:>13} {:>10}   {:<22}",
        "benchmark", "HTM", "AddrOnly", "Staggered+SW", "Staggered", "paper expectation"
    ));

    let set = ex.workload_set();
    let prepared = ex.prepare(&set);
    let report = ex.report();

    // Wave 1: the sequential and baseline-HTM references for every
    // workload (everything in wave 2 is normalized against these).
    let refs = report.pool(
        prepared
            .iter()
            .map(|p| {
                move || {
                    (
                        report.run_sequential(p, opts.seed),
                        report.run(p, Mode::Htm, opts.threads, opts.seed),
                    )
                }
            })
            .collect(),
    );

    // Wave 2: the three instrumented modes, one job per (workload, mode).
    const MODES: [Mode; 3] = [Mode::AddrOnly, Mode::StaggeredSw, Mode::Staggered];
    let measured = report.pool(
        prepared
            .iter()
            .zip(&refs)
            .flat_map(|(p, (seq, htm))| {
                MODES.map(|mode| {
                    move || report.measure(p, mode, opts.threads, opts.seed, seq, Some(htm))
                })
            })
            .collect(),
    );

    let mut improvements = Vec::new();
    for (w, row) in set.iter().zip(measured.chunks(MODES.len())) {
        let norm: Vec<f64> = row.iter().map(|m| m.speedup_vs_htm.unwrap()).collect();
        let expectation = paper::FIG7
            .iter()
            .find(|r| r.name == w.name())
            .map_or("", |r| r.band);
        println!(
            "{:<10} {:>8.2} {:>9.2} {:>13.2} {:>10.2}   {:<22}",
            w.name(),
            1.0,
            norm[0],
            norm[1],
            norm[2],
            expectation
        );
        improvements.push(norm[2]);
    }
    let hm = harmonic_mean(&improvements);
    println!();
    println!(
        "harmonic mean of Staggered speedups over HTM: {:.2}x (paper: 1.24x)",
        hm
    );
    ex.finish();
}
