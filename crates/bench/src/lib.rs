//! # stagger-bench — harnesses regenerating every table and figure
//!
//! One binary per exhibit of the paper's evaluation (Section 6):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — baseline HTM contention (S, %I, W/U, LA, LP) |
//! | `table2` | Table 2 — simulator configuration |
//! | `table3` | Table 3 — instrumentation statistics and accuracy |
//! | `table4` | Table 4 — benchmark characteristics |
//! | `fig7` | Figure 7 — speedup of all four modes normalized to HTM |
//! | `fig8` | Figure 8 — aborts/commit and wasted/useful cycles |
//! | `protocols` | protocol matrix — fallback policy × bounded-set HTM across the suite |
//! | `sweep` | declarative ablation sweeps over [`RunSpec`] grids |
//!
//! Run with `cargo run -p stagger-bench --release --bin <name>`. Common
//! options (see [`CommonOpts`]): `--threads N`, `--quick`, `--seed N`,
//! `--jobs N`, `--json`, `--scheduler S`; binaries with extra flags
//! (profile, diag, sweep) extend the set via [`CommonOpts::parse_with`],
//! so each `--help` lists exactly the flags that binary understands.
//! Every exhibit compiles each workload once
//! ([`PreparedWorkload`]) and submits its simulator runs to a parallel job
//! runner ([`jobs::run_jobs`]); results and output order are deterministic
//! at any `--jobs` level because each run is an independent deterministic
//! simulation. Absolute numbers differ from the paper's MARSSx86 testbed;
//! the *shape* — who wins, by roughly what factor — is the reproduction
//! target, and each binary prints the paper's numbers alongside for
//! comparison (see `EXPERIMENTS.md`).
//!
//! Microbenches (`cargo bench`) cover the mechanism costs the paper argues
//! are negligible: the inactive-ALPoint fast path, policy activation,
//! advisory-lock acquire/release, anchor-table lookups, and compile-pass
//! time.

use htm_sim::Scheduler;
use stagger_core::{Interp, Mode};
use workloads::{BenchResult, PreparedWorkload, Workload};

pub mod exhibit;
pub mod jobs;
pub mod paper;
pub mod profiling;
pub mod report;
pub mod sweep;

pub use exhibit::Exhibit;
pub use jobs::run_jobs;
pub use report::Report;
pub use sweep::RunSpec;

const COMMON_USAGE: &str = "\
common options:
  --threads N      simulated cores per run (default 16, as in the paper)
  --quick          scaled-down workloads for smoke runs
  --seed N         base workload seed (default 2015)
  --jobs N         harness worker threads; simulator runs execute in parallel
                   but results and output order stay deterministic
                   (default: available CPUs)
  --json           also dump per-run throughput to results/BENCH_<exhibit>.json
  --scheduler S    host-side core driver: cooperative (default), threaded, or
                   speculative (Block-STM-style optimistic parallelism across
                   simulated cores; bit-identical results); overrides the
                   HTM_SIM_SCHEDULER environment variable
  --host-threads N host worker threads per speculative-scheduler run
                   (0 = auto-detect, default; ignored by other schedulers)
  --interp I       instruction walker: bytecode (default, pre-decoded µ-ops)
                   or legacy (tree-walking reference); simulated results are
                   bit-identical either way, only host speed differs
  --fallback F     exhausted-retry fallback policy: irrevocable (default),
                   hybrid-stm, lazy-subscription (unsafe; reproduction of the
                   documented torn-commit window), or lazy-subscription-safe
                   (hardware commit-time lock validation)
  --help           show this message";

const COMMON_USAGE_LINE: &str = "[--threads N] [--quick] [--seed N] [--jobs N] [--json] \
     [--scheduler S] [--host-threads N] [--interp I] [--fallback F]";

/// Parse a [`Mode`] by its display name, case-insensitively; `+` may be
/// omitted ("staggeredsw" ≡ "Staggered+SW"). Thin wrapper over
/// [`Mode::parse`].
pub fn parse_mode(s: &str) -> Option<Mode> {
    Mode::parse(s)
}

/// Cursor over `argv` shared by the common-flag parser and each binary's
/// extra flags. Extra-flag closures pull values through [`Args::value`] /
/// [`Args::parsed`] and report errors through [`Args::fail`], so every
/// exhibit gets uniform usage/exit(2) behavior.
pub struct Args {
    argv: Vec<String>,
    i: usize,
    program: String,
    usage_line: String,
    usage_body: String,
}

impl Args {
    fn new(extra_usage_line: &str, extra_usage: &str) -> Args {
        let argv: Vec<String> = std::env::args().collect();
        let program = argv
            .first()
            .map(|p| {
                p.rsplit(['/', '\\'])
                    .next()
                    .unwrap_or("exhibit")
                    .to_string()
            })
            .unwrap_or_else(|| "exhibit".to_string());
        let usage_line = if extra_usage_line.is_empty() {
            COMMON_USAGE_LINE.to_string()
        } else {
            format!("{COMMON_USAGE_LINE} {extra_usage_line}")
        };
        let usage_body = if extra_usage.is_empty() {
            COMMON_USAGE.to_string()
        } else {
            format!("{COMMON_USAGE}\n{extra_usage}")
        };
        Args {
            argv,
            i: 1,
            program,
            usage_line,
            usage_body,
        }
    }

    /// The binary's name, as invoked.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Print `msg` plus the full usage text and exit with status 2.
    pub fn fail(&self, msg: &str) -> ! {
        eprintln!("{}: {msg}", self.program);
        eprintln!("usage: {} {}", self.program, self.usage_line);
        eprintln!("{}", self.usage_body);
        std::process::exit(2);
    }

    /// Consume and return the value of flag `name`, failing if absent.
    pub fn value(&mut self, name: &str) -> String {
        self.i += 1;
        match self.argv.get(self.i) {
            Some(v) => v.clone(),
            None => self.fail(&format!("{name} requires a value")),
        }
    }

    /// Consume and parse the value of flag `name`, failing on a
    /// missing or unparsable value.
    pub fn parsed<T: std::str::FromStr>(&mut self, name: &str) -> T {
        let v = self.value(name);
        v.parse()
            .unwrap_or_else(|_| self.fail(&format!("invalid {name} value '{v}'")))
    }

    /// Peek the flag at the cursor; the parse loop advances the cursor
    /// after the flag (and any value consumed through [`Args::value`]) is
    /// processed.
    fn next_flag(&self) -> Option<String> {
        self.argv.get(self.i).cloned()
    }
}

/// The flags shared by every exhibit binary. Per-binary option sets (e.g.
/// the profiler's `--workload/--mode/--trace-out` or diag's `--hist`)
/// embed a `CommonOpts` and add their own flags via
/// [`CommonOpts::parse_with`], so `--help` of each binary lists only the
/// flags it actually understands.
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// Simulated cores per run.
    pub threads: usize,
    /// Scaled-down workloads for smoke runs.
    pub quick: bool,
    /// Base workload seed.
    pub seed: u64,
    /// Harness worker threads for [`run_jobs`].
    pub jobs: usize,
    /// Dump `results/BENCH_<exhibit>.json` at the end of the run.
    pub json: bool,
    /// Host-side scheduler pin (`--scheduler`). `None` leaves the
    /// `HTM_SIM_SCHEDULER` environment variable as the fallback.
    pub scheduler: Option<Scheduler>,
    /// Host worker threads per speculative-scheduler run
    /// (`--host-threads`; 0 = auto-detect). Ignored by other schedulers.
    pub host_threads: usize,
    /// Interpreter pin (`--interp`). `None` keeps the runtime default
    /// (the pre-decoded bytecode walker).
    pub interp: Option<Interp>,
    /// Fallback-policy pin (`--fallback`). `None` keeps the machine
    /// default (`irrevocable`). Unlike the scheduler/interp pins this IS a
    /// simulated knob: it enters the experiment spec and its run keys.
    pub fallback: Option<htm_sim::FallbackPolicy>,
}

impl CommonOpts {
    fn defaults() -> CommonOpts {
        CommonOpts {
            threads: 16,
            quick: false,
            seed: 2015,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            json: false,
            scheduler: None,
            host_threads: 0,
            interp: None,
            fallback: None,
        }
    }

    #[cfg(test)]
    pub(crate) fn default_for_tests() -> CommonOpts {
        CommonOpts::defaults()
    }

    /// Parse the common flags from `std::env::args`. Prints usage and
    /// exits with status 2 on an unknown flag or a missing/invalid value.
    pub fn from_args() -> CommonOpts {
        Self::parse_with("", "", |_, _| false)
    }

    /// Parse the common flags plus a binary's own: `extra` is called for
    /// every flag the common core does not recognize and returns whether
    /// it consumed the flag (pulling any value through the [`Args`]).
    /// `extra_usage_line` / `extra_usage` extend the usage text.
    pub fn parse_with(
        extra_usage_line: &str,
        extra_usage: &str,
        mut extra: impl FnMut(&mut Args, &str) -> bool,
    ) -> CommonOpts {
        let mut a = Args::new(extra_usage_line, extra_usage);
        let mut o = CommonOpts::defaults();
        while let Some(flag) = a.next_flag() {
            match flag.as_str() {
                "--threads" => o.threads = a.parsed("--threads"),
                "--seed" => o.seed = a.parsed("--seed"),
                "--jobs" => o.jobs = a.parsed("--jobs"),
                "--quick" => o.quick = true,
                "--json" => o.json = true,
                "--scheduler" => {
                    let v = a.value("--scheduler");
                    o.scheduler =
                        Some(Scheduler::parse(&v).unwrap_or_else(|| {
                            a.fail(&format!("invalid --scheduler value '{v}'"))
                        }));
                }
                "--host-threads" => o.host_threads = a.parsed("--host-threads"),
                "--interp" => {
                    let v = a.value("--interp");
                    o.interp = Some(
                        Interp::parse(&v)
                            .unwrap_or_else(|| a.fail(&format!("invalid --interp value '{v}'"))),
                    );
                }
                "--fallback" => {
                    let v = a.value("--fallback");
                    o.fallback = Some(
                        htm_sim::FallbackPolicy::parse(&v)
                            .unwrap_or_else(|| a.fail(&format!("invalid --fallback value '{v}'"))),
                    );
                }
                "--help" | "-h" => {
                    println!("usage: {} {}", a.program, a.usage_line);
                    println!("{}", a.usage_body);
                    std::process::exit(0);
                }
                other => {
                    if !extra(&mut a, other) {
                        a.fail(&format!("unknown option '{other}'"));
                    }
                }
            }
            a.i += 1;
        }
        if o.threads == 0 {
            a.fail("--threads must be at least 1");
        }
        if o.jobs == 0 {
            a.fail("--jobs must be at least 1");
        }
        o
    }
}

/// The benchmark set, optionally scaled down for quick runs (delegates to
/// the workload registry).
pub fn workload_set(quick: bool) -> Vec<Box<dyn Workload>> {
    if quick {
        workloads::quick_workloads()
    } else {
        workloads::all_workloads()
    }
}

/// Compile + flatten every workload, in parallel, each exactly once. The
/// returned vector is index-aligned with `set`.
pub fn prepare_all<'w>(
    set: &'w [Box<dyn Workload>],
    n_workers: usize,
) -> Vec<PreparedWorkload<'w>> {
    run_jobs(
        set.iter()
            .map(|w| move || PreparedWorkload::new(w.as_ref()))
            .collect(),
        n_workers,
    )
}

/// Run one prepared workload at `threads` in `mode`.
pub fn run(p: &PreparedWorkload, mode: Mode, threads: usize, seed: u64) -> BenchResult {
    p.run(mode, threads, seed)
}

/// Sequential (1-thread, baseline-HTM) reference run.
pub fn run_sequential(p: &PreparedWorkload, seed: u64) -> BenchResult {
    p.run(Mode::Htm, 1, seed)
}

/// Measured numbers for one benchmark in one mode, plus its sequential
/// reference.
#[derive(Debug, Clone)]
pub struct Measured {
    pub name: &'static str,
    pub mode: Mode,
    pub speedup_vs_seq: f64,
    pub speedup_vs_htm: Option<f64>,
    pub aborts_per_commit: f64,
    pub wasted_over_useful: f64,
    pub irrevocable_frac: f64,
    pub tm_frac: f64,
    pub addr_locality: f64,
    pub pc_locality: f64,
    pub accuracy: f64,
    pub result: BenchResult,
}

/// Run one prepared workload in `mode` and derive the paper's metrics,
/// given the sequential reference and (optionally) the baseline HTM run at
/// the same thread count.
pub fn measure(
    p: &PreparedWorkload,
    mode: Mode,
    threads: usize,
    seed: u64,
    seq: &BenchResult,
    htm: Option<&BenchResult>,
) -> Measured {
    measured_from(run(p, mode, threads, seed), seq, htm)
}

/// Derive the paper's metrics from an already finished run, given the
/// sequential reference and (optionally) the baseline HTM run at the same
/// thread count.
pub fn measured_from(r: BenchResult, seq: &BenchResult, htm: Option<&BenchResult>) -> Measured {
    Measured {
        name: r.name,
        mode: r.mode,
        speedup_vs_seq: seq.cycles() as f64 / r.cycles() as f64,
        speedup_vs_htm: htm.map(|h| h.cycles() as f64 / r.cycles() as f64),
        aborts_per_commit: r.out.sim.aborts_per_commit(),
        wasted_over_useful: r.out.sim.wasted_over_useful(),
        irrevocable_frac: r.out.sim.irrevocable_fraction(),
        tm_frac: r.out.sim.tm_fraction(),
        addr_locality: r.out.rt.addr_locality(),
        pc_locality: r.out.rt.pc_locality(),
        accuracy: r.out.rt.accuracy(),
        result: r,
    }
}

/// Classify a locality share into the paper's Y/N.
pub fn yn(share: f64) -> &'static str {
    if share >= 0.5 {
        "Y"
    } else {
        "N"
    }
}

/// Classify aborts/commit into the paper's contention classes.
pub fn contention_class(abts_per_commit: f64) -> &'static str {
    if abts_per_commit < 0.3 {
        "low"
    } else if abts_per_commit < 2.0 {
        "med"
    } else {
        "high"
    }
}

/// Harmonic mean of a slice of positive ratios.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Print a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        // HM is dominated by the smaller value.
        let hm = harmonic_mean(&[1.0, 4.0]);
        assert!(hm > 1.0 && hm < 2.5);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(contention_class(0.02), "low");
        assert_eq!(contention_class(1.1), "med");
        assert_eq!(contention_class(4.8), "high");
        assert_eq!(yn(0.8), "Y");
        assert_eq!(yn(0.2), "N");
    }

    #[test]
    fn mode_names_parse_back() {
        for m in Mode::ALL {
            assert_eq!(parse_mode(m.name()), Some(m));
            assert_eq!(parse_mode(&m.name().to_lowercase()), Some(m));
        }
        assert_eq!(parse_mode("staggeredsw"), Some(Mode::StaggeredSw));
        assert_eq!(parse_mode("nonsense"), None);
    }

    #[test]
    fn quick_set_has_all_ten() {
        assert_eq!(workload_set(true).len(), 10);
        assert_eq!(workload_set(false).len(), 10);
    }

    /// The harness invariant the parallel runner must preserve: simulated
    /// results (cycles, instructions, commits) are bit-identical whether
    /// runs execute sequentially or on worker threads.
    #[test]
    fn parallel_harness_matches_sequential_results() {
        let w = workloads::ssca2::Ssca2 {
            n_nodes: 64,
            max_degree: 7,
            total_ops: 400,
        };
        let p = PreparedWorkload::new(&w);
        let cases: Vec<(Mode, usize)> = vec![
            (Mode::Htm, 1),
            (Mode::Htm, 4),
            (Mode::Staggered, 4),
            (Mode::AddrOnly, 2),
        ];
        let sequential: Vec<(u64, u64, u64)> = cases
            .iter()
            .map(|&(m, t)| {
                let r = p.run(m, t, 7);
                (r.cycles(), r.sim_insts(), r.out.exec.committed_txns)
            })
            .collect();
        let parallel = run_jobs(
            cases
                .iter()
                .map(|&(m, t)| {
                    let p = &p;
                    move || {
                        let r = p.run(m, t, 7);
                        (r.cycles(), r.sim_insts(), r.out.exec.committed_txns)
                    }
                })
                .collect(),
            4,
        );
        assert_eq!(sequential, parallel);
    }

    /// Same seed, same prepared workload => identical runs (compile-once
    /// caching must not perturb determinism).
    #[test]
    fn prepared_runs_are_deterministic() {
        let w = workloads::list::ListBench::tiny(60, 20);
        let p = PreparedWorkload::new(&w);
        let a = p.run(Mode::Staggered, 4, 11);
        let b = p.run(Mode::Staggered, 4, 11);
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.sim_insts(), b.sim_insts());
        assert_eq!(
            a.out.sim.aggregate().conflict_aborts,
            b.out.sim.aggregate().conflict_aborts
        );
    }
}
