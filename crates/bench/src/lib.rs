//! # stagger-bench — harnesses regenerating every table and figure
//!
//! One binary per exhibit of the paper's evaluation (Section 6):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — baseline HTM contention (S, %I, W/U, LA, LP) |
//! | `table2` | Table 2 — simulator configuration |
//! | `table3` | Table 3 — instrumentation statistics and accuracy |
//! | `table4` | Table 4 — benchmark characteristics |
//! | `fig7` | Figure 7 — speedup of all four modes normalized to HTM |
//! | `fig8` | Figure 8 — aborts/commit and wasted/useful cycles |
//!
//! Run with `cargo run -p stagger-bench --release --bin <name>`. Options:
//! `--threads N` (default 16, as in the paper) and `--quick` (scaled-down
//! workloads for smoke runs). Absolute numbers differ from the paper's
//! MARSSx86 testbed; the *shape* — who wins, by roughly what factor — is
//! the reproduction target, and each binary prints the paper's numbers
//! alongside for comparison (see `EXPERIMENTS.md`).
//!
//! Criterion microbenches (`cargo bench`) cover the mechanism costs the
//! paper argues are negligible: the inactive-ALPoint fast path, policy
//! activation, advisory-lock acquire/release, anchor-table lookups, and
//! compile-pass time.

use stagger_core::Mode;
use workloads::{run_benchmark, BenchResult, Workload};

pub mod paper;

/// Harness options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Opts {
    pub threads: usize,
    pub quick: bool,
    pub seed: u64,
}

impl Opts {
    /// Parse `--threads N`, `--quick`, `--seed N` from `std::env::args`.
    pub fn from_args() -> Opts {
        let mut o = Opts {
            threads: 16,
            quick: false,
            seed: 2015,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--threads" => {
                    i += 1;
                    o.threads = args[i].parse().expect("--threads N");
                }
                "--quick" => o.quick = true,
                "--seed" => {
                    i += 1;
                    o.seed = args[i].parse().expect("--seed N");
                }
                other => panic!("unknown option {other} (supported: --threads N, --quick, --seed N)"),
            }
            i += 1;
        }
        o
    }
}

/// The benchmark set, optionally scaled down for quick runs.
pub fn workload_set(quick: bool) -> Vec<Box<dyn Workload>> {
    if !quick {
        return workloads::all_workloads();
    }
    use workloads::*;
    vec![
        Box::new(genome::Genome::tiny()),
        Box::new(intruder::Intruder::tiny()),
        Box::new(kmeans::Kmeans::tiny()),
        Box::new(labyrinth::Labyrinth::tiny()),
        Box::new(ssca2::Ssca2::tiny()),
        Box::new(vacation::Vacation::tiny()),
        Box::new(list::ListBench::lo()),
        Box::new(list::ListBench::hi()),
        Box::new(tsp::Tsp::tiny()),
        Box::new(memcached::Memcached::tiny()),
    ]
}

/// Run one workload at `threads` in `mode`.
pub fn run(w: &dyn Workload, mode: Mode, threads: usize, seed: u64) -> BenchResult {
    run_benchmark(w, mode, threads, seed)
}

/// Sequential (1-thread, baseline-HTM) reference run.
pub fn run_sequential(w: &dyn Workload, seed: u64) -> BenchResult {
    run_benchmark(w, Mode::Htm, 1, seed)
}

/// Measured numbers for one benchmark in one mode, plus its sequential
/// reference.
#[derive(Debug, Clone)]
pub struct Measured {
    pub name: &'static str,
    pub mode: Mode,
    pub speedup_vs_seq: f64,
    pub speedup_vs_htm: Option<f64>,
    pub aborts_per_commit: f64,
    pub wasted_over_useful: f64,
    pub irrevocable_frac: f64,
    pub tm_frac: f64,
    pub addr_locality: f64,
    pub pc_locality: f64,
    pub accuracy: f64,
    pub result: BenchResult,
}

/// Run one workload in `mode` and derive the paper's metrics, given the
/// sequential reference and (optionally) the baseline HTM run at the same
/// thread count.
pub fn measure(
    w: &dyn Workload,
    mode: Mode,
    threads: usize,
    seed: u64,
    seq: &BenchResult,
    htm: Option<&BenchResult>,
) -> Measured {
    let r = run(w, mode, threads, seed);
    Measured {
        name: r.name,
        mode,
        speedup_vs_seq: seq.cycles() as f64 / r.cycles() as f64,
        speedup_vs_htm: htm.map(|h| h.cycles() as f64 / r.cycles() as f64),
        aborts_per_commit: r.out.sim.aborts_per_commit(),
        wasted_over_useful: r.out.sim.wasted_over_useful(),
        irrevocable_frac: r.out.sim.irrevocable_fraction(),
        tm_frac: r.out.sim.tm_fraction(),
        addr_locality: r.out.rt.addr_locality(),
        pc_locality: r.out.rt.pc_locality(),
        accuracy: r.out.rt.accuracy(),
        result: r,
    }
}

/// Classify a locality share into the paper's Y/N.
pub fn yn(share: f64) -> &'static str {
    if share >= 0.5 {
        "Y"
    } else {
        "N"
    }
}

/// Classify aborts/commit into the paper's contention classes.
pub fn contention_class(abts_per_commit: f64) -> &'static str {
    if abts_per_commit < 0.3 {
        "low"
    } else if abts_per_commit < 2.0 {
        "med"
    } else {
        "high"
    }
}

/// Harmonic mean of a slice of positive ratios.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Print a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        // HM is dominated by the smaller value.
        let hm = harmonic_mean(&[1.0, 4.0]);
        assert!(hm > 1.0 && hm < 2.5);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(contention_class(0.02), "low");
        assert_eq!(contention_class(1.1), "med");
        assert_eq!(contention_class(4.8), "high");
        assert_eq!(yn(0.8), "Y");
        assert_eq!(yn(0.2), "N");
    }

    #[test]
    fn quick_set_has_all_ten() {
        assert_eq!(workload_set(true).len(), 10);
        assert_eq!(workload_set(false).len(), 10);
    }
}
