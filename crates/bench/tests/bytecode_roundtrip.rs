//! Golden round-trip of the µ-op lowering: for every workload's
//! instrumented module, walk each `PreparedFunc` block alongside its
//! lowered `BytecodeFunc` and check that
//!
//! * every µ-op corresponds to exactly the source instruction(s) at the
//!   cursor — fused superinstructions to a legal adjacent pair, singles
//!   to their own variant;
//! * every µ-op carries the PC the legacy interpreter would report for
//!   the instruction whose simulated-memory behavior it owns (the
//!   anchored access for ALP fusions, the load for load+use fusions,
//!   the instruction itself otherwise);
//! * every branch target resolved to the absolute µ-op index of the
//!   source block's first µ-op;
//! * the cursor lands exactly on the next block's start — no µ-op is
//!   skipped, duplicated or orphaned;
//! * the disassembler covers the whole µ-op array.

use stagger_bench::workload_set;
use tm_interp::{BytecodeFunc, OpCode, Prepared, NO_REG};
use tm_ir::Inst;
use workloads::PreparedWorkload;

/// The opcode a *single* (unfused) lowering of `inst` must carry.
fn single_opcode(inst: &Inst) -> OpCode {
    match inst {
        Inst::Const { .. } => OpCode::Const,
        Inst::Mov { .. } => OpCode::Mov,
        Inst::Bin { .. } => OpCode::Bin,
        Inst::Cmp { .. } => OpCode::Cmp,
        Inst::Load { .. } => OpCode::Load,
        Inst::Store { .. } => OpCode::Store,
        Inst::LoadIdx { .. } => OpCode::LoadIdx,
        Inst::StoreIdx { .. } => OpCode::StoreIdx,
        Inst::Gep { .. } => OpCode::Gep,
        Inst::Alloc { .. } => OpCode::Alloc,
        Inst::Call { .. } => OpCode::Call,
        Inst::Ret { .. } => OpCode::Ret,
        Inst::Br { .. } => OpCode::Br,
        Inst::CondBr { .. } => OpCode::CondBr,
        Inst::Compute { .. } => OpCode::Compute,
        Inst::IdleUntil { .. } => OpCode::IdleUntil,
        Inst::Rand { .. } => OpCode::Rand,
        Inst::AlPoint { .. } => OpCode::AlPoint,
    }
}

/// Check one fused µ-op against the source pair it consumed. Returns the
/// PC the µ-op must carry.
fn check_fusion(
    code: OpCode,
    first: &Inst,
    first_pc: u64,
    second: &Inst,
    second_pc: u64,
    ctx: &str,
) -> u64 {
    match code {
        OpCode::CmpBr => {
            let Inst::Cmp { dst, .. } = first else {
                panic!("{ctx}: CmpBr without a leading Cmp ({first:?})");
            };
            let Inst::CondBr { cond, .. } = second else {
                panic!("{ctx}: CmpBr without a trailing CondBr ({second:?})");
            };
            assert_eq!(cond, dst, "{ctx}: CmpBr branches on a foreign register");
            first_pc
        }
        OpCode::LoadCmp | OpCode::LoadBin => {
            assert!(
                matches!(first, Inst::Load { .. }),
                "{ctx}: load+use without a leading Load ({first:?})"
            );
            match (code, second) {
                (OpCode::LoadCmp, Inst::Cmp { .. }) => {}
                (OpCode::LoadBin, Inst::Bin { op, .. }) => {
                    assert!(
                        !matches!(op, tm_ir::BinOp::Div | tm_ir::BinOp::Rem),
                        "{ctx}: Div/Rem must never fuse (trap PC would be lost)"
                    );
                }
                _ => panic!("{ctx}: load+use with a non-ALU use ({second:?})"),
            }
            first_pc
        }
        OpCode::AlpLoad | OpCode::AlpLoadIdx | OpCode::AlpStore | OpCode::AlpStoreIdx => {
            assert!(
                first.alp_covers(second),
                "{ctx}: ALP fusion over a non-covered access ({first:?} / {second:?})"
            );
            let shaped = match code {
                OpCode::AlpLoad => matches!(second, Inst::Load { .. }),
                OpCode::AlpLoadIdx => matches!(second, Inst::LoadIdx { .. }),
                OpCode::AlpStore => matches!(second, Inst::Store { .. }),
                OpCode::AlpStoreIdx => matches!(second, Inst::StoreIdx { .. }),
                _ => unreachable!(),
            };
            assert!(shaped, "{ctx}: ALP fusion shape mismatch ({second:?})");
            second_pc
        }
        _ => panic!("{ctx}: fused_width says 2 for non-fused opcode {code:?}"),
    }
}

fn check_func(fname: &str, pf: &tm_interp::prepared::PreparedFunc, bf: &BytecodeFunc) {
    assert_eq!(
        bf.block_starts.len(),
        pf.blocks.len(),
        "{fname}: one start per source block"
    );
    assert_eq!(
        bf.entry,
        bf.block_starts[pf.entry.index()],
        "{fname}: entry resolves to the entry block's first µ-op"
    );

    for (bid, block) in pf.blocks.iter().enumerate() {
        let mut ip = bf.block_starts[bid] as usize;
        let mut j = 0;
        while j < block.len() {
            let ctx = format!("{fname} block {bid} inst {j} (µ-op {ip})");
            let u = &bf.uops[ip];
            let width = BytecodeFunc::fused_width(u.code);
            let (inst, pc) = &block[j];
            if width == 2 {
                let (second, second_pc) = &block[j + 1];
                let want_pc = check_fusion(u.code, inst, *pc, second, *second_pc, &ctx);
                assert_eq!(u.pc, want_pc, "{ctx}: fused µ-op PC");
            } else {
                assert_eq!(u.code, single_opcode(inst), "{ctx}: opcode");
                assert_eq!(u.pc, *pc, "{ctx}: µ-op PC");
            }
            // Branch targets must resolve to block starts of the *source*
            // instruction's targets, whichever constituent carried them.
            let branch = if width == 2 { &block[j + 1].0 } else { inst };
            match branch {
                Inst::Br { target } => {
                    assert_eq!(u.imm, bf.block_starts[target.index()], "{ctx}: Br target");
                }
                Inst::CondBr { then_b, else_b, .. } => {
                    assert_eq!(u.imm, bf.block_starts[then_b.index()], "{ctx}: then target");
                    assert_eq!(
                        u.imm2,
                        bf.block_starts[else_b.index()],
                        "{ctx}: else target"
                    );
                }
                _ => {}
            }
            // Call argument slots must mirror the source argument list.
            if let Inst::Call { args, dst, .. } = inst {
                assert_eq!(u.c as usize, args.len(), "{ctx}: Call arity");
                for (k, r) in args.iter().enumerate() {
                    assert_eq!(
                        bf.arg_pool[u.imm2 as usize + k] as u32,
                        r.0,
                        "{ctx}: Call arg {k}"
                    );
                }
                if dst.is_none() {
                    assert_eq!(u.a, NO_REG, "{ctx}: void Call writes no register");
                }
            }
            ip += 1;
            j += width;
        }
        let block_end = bf
            .block_starts
            .get(bid + 1)
            .map_or(bf.uops.len(), |&s| s as usize);
        assert_eq!(
            ip, block_end,
            "{fname} block {bid}: lowering consumed exactly the block"
        );
    }

    let lines = bf.disasm();
    assert_eq!(
        lines.len(),
        bf.uops.len(),
        "{fname}: disassembler covers every µ-op"
    );
}

/// Every workload, both scales: the lowered bytecode round-trips against
/// the prepared enum form, instruction by instruction.
#[test]
fn every_workload_module_round_trips() {
    for quick in [true, false] {
        // The serving workload rides along: its open-loop thread_main is
        // the only module emitting IdleUntil µ-ops.
        let mut set = workload_set(quick);
        set.push(workloads::workload_by_name("serve-flash-i8000", quick).unwrap());
        for w in &set {
            let p = PreparedWorkload::new(w.as_ref());
            let prep = Prepared::build(p.compiled());
            assert_eq!(prep.funcs.len(), prep.code.funcs.len());
            let mut fused = 0usize;
            for (pf, bf) in prep.funcs.iter().zip(&prep.code.funcs) {
                check_func(&pf.name, pf, bf);
                fused += bf
                    .uops
                    .iter()
                    .filter(|u| BytecodeFunc::fused_width(u.code) == 2)
                    .count();
            }
            assert!(
                fused > 0,
                "{}: instrumented modules always offer fusion opportunities",
                w.name()
            );
        }
    }
}
