//! The observability layer is a pure observer: turning event recording on
//! must not change a single simulated cycle, statistic, trace entry, or
//! thread return value. And the events it records must carry enough to
//! reproduce the paper's profiling pass — on the contended list, conflict
//! attribution has to point at the list-traversal access the staggered
//! mode anchors on.

use htm_sim::{Machine, MachineConfig, Scheduler};
use stagger_bench::profiling::{conflict_pairs, resolve_tag};
use stagger_bench::workload_set;
use stagger_core::{Mode, RuntimeConfig};
use workloads::serve::Serve;
use workloads::PreparedWorkload;

fn run_with_recording(
    p: &PreparedWorkload,
    mode: Mode,
    record_events: bool,
) -> (htm_sim::SimStats, Vec<Vec<htm_sim::TraceEvent>>, Vec<u64>) {
    let mut mcfg = MachineConfig::cores(4);
    mcfg.record_trace = true;
    mcfg.record_events = record_events;
    let machine = Machine::new(mcfg);
    let r = p.run_on(&machine, &RuntimeConfig::with_mode(mode), 2015);
    if record_events {
        let n: usize = machine.take_events().iter().map(|s| s.len()).sum();
        assert!(n > 0, "{}: recording on but no events", p.name());
    }
    (machine.stats(), machine.take_trace(), r.out.returns)
}

/// Event recording on vs off: bit-identical stats, traces and returns on a
/// representative workload slice in both contended modes.
#[test]
fn event_recording_does_not_perturb_the_simulation() {
    let picks = ["list-hi", "genome", "kmeans", "memcached"];
    let set = workload_set(true);
    for name in picks {
        let w = set
            .iter()
            .find(|w| w.name() == name)
            .unwrap_or_else(|| panic!("workload {name} missing from quick set"));
        let p = PreparedWorkload::new(w.as_ref());
        for mode in [Mode::Htm, Mode::Staggered] {
            let off = run_with_recording(&p, mode, false);
            let on = run_with_recording(&p, mode, true);
            assert_eq!(
                off.0,
                on.0,
                "{name} [{}]: stats perturbed by event recording",
                mode.name()
            );
            assert_eq!(
                off.1,
                on.1,
                "{name} [{}]: traces perturbed by event recording",
                mode.name()
            );
            assert_eq!(
                off.2,
                on.2,
                "{name} [{}]: returns perturbed by event recording",
                mode.name()
            );
        }
    }
}

/// The serving scenario's latency capture is itself a pure observer, and
/// every per-request latency is a simulated quantity: recording on vs off
/// leaves the simulation bit-identical, and the full request-latency table
/// (arrival, completion, and the component breakdown) is bit-identical
/// across the cooperative, threaded and speculative schedulers.
#[test]
fn serve_latency_identical_across_schedulers() {
    let name = "serve-flash-i8000";
    let w = workloads::workload_by_name(name, true).expect("serve name parses");
    let p = PreparedWorkload::new(w.as_ref());
    let cores = 4;
    let cfg = Serve::parse_name(name, true).expect("serve name parses");
    let arrivals: Vec<Vec<u64>> = (0..cores)
        .map(|c| cfg.schedule(c).iter().map(|r| r.arrival).collect())
        .collect();

    for mode in [Mode::Htm, Mode::Staggered] {
        let off = run_with_recording(&p, mode, false);
        let on = run_with_recording(&p, mode, true);
        assert_eq!(
            off.0,
            on.0,
            "{name} [{}]: stats perturbed by event recording",
            mode.name()
        );
        assert_eq!(
            off.2,
            on.2,
            "{name} [{}]: returns perturbed by event recording",
            mode.name()
        );

        let tables: Vec<_> = [
            Scheduler::Cooperative,
            Scheduler::Threaded,
            Scheduler::Speculative,
        ]
        .into_iter()
        .map(|sched| {
            let mcfg = MachineConfig::cores(cores).record_events().scheduler(sched);
            let r = p.run_cfg(2015, mcfg, RuntimeConfig::with_mode(mode));
            let reqs = htm_sim::request_latencies(&r.events, &arrivals);
            assert!(
                !reqs.is_empty(),
                "{name} [{}] {sched:?}: no requests derived",
                mode.name()
            );
            (htm_sim::histogram_of(&reqs).summary(), reqs)
        })
        .collect();
        for t in &tables[1..] {
            assert_eq!(
                tables[0],
                *t,
                "{name} [{}]: latency table differs across schedulers",
                mode.name()
            );
        }
    }
}

/// The profiling pass on the contended list in plain HTM mode: the top
/// conflicting PC pair must resolve — through the compiled program's
/// anchor tables — to an access inside the list traversal, the very
/// access the staggered modes anchor on.
#[test]
fn list_conflicts_attribute_to_the_traversal() {
    let set = workload_set(true);
    let w = set.iter().find(|w| w.name() == "list-hi").unwrap();
    let p = PreparedWorkload::new(w.as_ref());
    let mut mcfg = MachineConfig::cores(8);
    mcfg.record_events = true;
    let machine = Machine::new(mcfg);
    p.run_on(&machine, &RuntimeConfig::with_mode(Mode::Htm), 2015);
    let streams = machine.take_events();

    let pairs = conflict_pairs(&streams);
    assert!(!pairs.is_empty(), "contended list produced no conflicts");
    let top = &pairs[0];
    let victim = resolve_tag(p.compiled(), top.ab_id, top.victim_tag)
        .expect("top victim tag resolves to the program");
    assert_eq!(
        victim.func, "list_find_prev",
        "top conflict victim should be the list traversal, got {}+{:#x}",
        victim.func, victim.offset
    );
    // The traversal access belongs to an anchor region — the one the
    // staggered modes lock.
    assert_ne!(victim.anchor_id, 0, "traversal access maps to an anchor");
}
