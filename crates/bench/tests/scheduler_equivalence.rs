//! The tentpole invariant of the cooperative scheduler: for every
//! workload, the single-threaded cooperative driver and the legacy
//! thread-per-core driver produce *byte-identical* simulations — same
//! per-core statistics, same execution cycles, same begin/commit/abort
//! traces, same cycle-stamped observability event streams. The schedulers
//! may only differ in host-side mechanics, never in what the simulated
//! machine does.

use htm_sim::{Machine, MachineConfig, ObsEvent, Scheduler};
use stagger_bench::workload_set;
use stagger_core::{Mode, RuntimeConfig};
use workloads::PreparedWorkload;

/// Everything one simulation produced: stats snapshot, traces,
/// observability event streams, thread return values.
type RunArtifacts = (
    htm_sim::SimStats,
    Vec<Vec<htm_sim::TraceEvent>>,
    Vec<Vec<ObsEvent>>,
    Vec<u64>,
);

/// Run one prepared workload under the given scheduler.
fn run_under(
    p: &PreparedWorkload,
    scheduler: Scheduler,
    mode: Mode,
    threads: usize,
    seed: u64,
) -> RunArtifacts {
    let mut mcfg = MachineConfig::cores(threads);
    mcfg.scheduler = scheduler;
    mcfg.record_trace = true;
    mcfg.record_events = true;
    let machine = Machine::new(mcfg);
    let r = p.run_on(&machine, &RuntimeConfig::with_mode(mode), seed);
    (
        machine.stats(),
        machine.take_trace(),
        machine.take_events(),
        r.out.returns,
    )
}

/// All ten workloads (`--quick` configs), both contended modes, both
/// schedulers: stats and traces must match exactly.
#[test]
fn cooperative_and_threaded_schedulers_are_bit_identical() {
    let set = workload_set(true);
    assert_eq!(set.len(), 10);
    for w in &set {
        let p = PreparedWorkload::new(w.as_ref());
        for mode in [Mode::Htm, Mode::Staggered] {
            let coop = run_under(&p, Scheduler::Cooperative, mode, 4, 2015);
            let thr = run_under(&p, Scheduler::Threaded, mode, 4, 2015);
            assert_eq!(
                coop.0,
                thr.0,
                "{} [{}]: per-core stats diverged across schedulers",
                w.name(),
                mode.name()
            );
            assert_eq!(
                coop.1,
                thr.1,
                "{} [{}]: traces diverged across schedulers",
                w.name(),
                mode.name()
            );
            assert_eq!(
                coop.2,
                thr.2,
                "{} [{}]: event streams diverged across schedulers",
                w.name(),
                mode.name()
            );
            assert_eq!(
                coop.3,
                thr.3,
                "{} [{}]: thread return values diverged across schedulers",
                w.name(),
                mode.name()
            );
        }
    }
}
