//! The tentpole invariant of the host-side schedulers: for every
//! workload, the single-threaded cooperative driver, the legacy
//! thread-per-core driver and the speculative (Block-STM-style) driver
//! produce *byte-identical* simulations — same per-core statistics, same
//! execution cycles, same begin/commit/abort traces, same cycle-stamped
//! observability event streams, same thread return values. The schedulers
//! may only differ in host-side mechanics (and host-side counters like
//! [`htm_sim::SpecStats`]), never in what the simulated machine does.

use htm_sim::{FallbackPolicy, Machine, MachineConfig, ObsEvent, Scheduler};
use stagger_bench::workload_set;
use stagger_core::{Mode, RuntimeConfig};
use workloads::PreparedWorkload;

/// Everything one simulation produced: stats snapshot, traces,
/// observability event streams, thread return values.
type RunArtifacts = (
    htm_sim::SimStats,
    Vec<Vec<htm_sim::TraceEvent>>,
    Vec<Vec<ObsEvent>>,
    Vec<u64>,
);

/// Run one prepared workload under the given scheduler.
fn run_under(
    p: &PreparedWorkload,
    scheduler: Scheduler,
    mode: Mode,
    threads: usize,
    seed: u64,
) -> RunArtifacts {
    run_cfg_under(p, scheduler, mode, threads, seed, |c| c)
}

/// Same, with a machine-config mutation applied before the run (how the
/// protocol-matrix rows select their fallback/capacity variants).
fn run_cfg_under(
    p: &PreparedWorkload,
    scheduler: Scheduler,
    mode: Mode,
    threads: usize,
    seed: u64,
    cfg: impl Fn(MachineConfig) -> MachineConfig,
) -> RunArtifacts {
    let mut mcfg = cfg(MachineConfig::cores(threads));
    mcfg.scheduler = scheduler;
    mcfg.record_trace = true;
    mcfg.record_events = true;
    let machine = Machine::new(mcfg);
    let r = p.run_on(&machine, &RuntimeConfig::with_mode(mode), seed);
    if scheduler == Scheduler::Speculative {
        let s = machine.spec_stats();
        assert!(
            s.rounds > 0 && s.speculated_ops > 0,
            "{}: speculative run must actually speculate (got {s:?})",
            p.name()
        );
    }
    (
        machine.stats(),
        machine.take_trace(),
        machine.take_events(),
        r.out.returns,
    )
}

fn assert_identical(a: &RunArtifacts, b: &RunArtifacts, name: &str, mode: Mode, other: &str) {
    assert_eq!(
        a.0,
        b.0,
        "{name} [{}]: per-core stats diverged (cooperative vs {other})",
        mode.name()
    );
    assert_eq!(
        a.1,
        b.1,
        "{name} [{}]: traces diverged (cooperative vs {other})",
        mode.name()
    );
    assert_eq!(
        a.2,
        b.2,
        "{name} [{}]: event streams diverged (cooperative vs {other})",
        mode.name()
    );
    assert_eq!(
        a.3,
        b.3,
        "{name} [{}]: thread return values diverged (cooperative vs {other})",
        mode.name()
    );
}

/// All ten workloads (`--quick` configs), both contended modes, all three
/// schedulers: stats, traces, events and returns must match exactly.
#[test]
fn all_schedulers_are_bit_identical() {
    let set = workload_set(true);
    assert_eq!(set.len(), 10);
    for w in &set {
        let p = PreparedWorkload::new(w.as_ref());
        for mode in [Mode::Htm, Mode::Staggered] {
            let coop = run_under(&p, Scheduler::Cooperative, mode, 4, 2015);
            let thr = run_under(&p, Scheduler::Threaded, mode, 4, 2015);
            assert_identical(&coop, &thr, w.name(), mode, "threaded");
            let spec = run_under(&p, Scheduler::Speculative, mode, 4, 2015);
            assert_identical(&coop, &spec, w.name(), mode, "speculative");
        }
    }
}

/// The protocol matrix rides the same invariant: each fallback/capacity
/// variant (instrumented hybrid software path, hardware commit-time lock
/// validation, bounded read/write sets) must simulate byte-identically
/// under all three schedulers. Two workloads keep the suite bounded:
/// `list-hi` exercises heavy fallback traffic (bounded-set turns most of
/// its transactions into capacity storms), `memcached` the low-contention
/// fast path.
#[test]
fn protocol_variants_are_bit_identical_across_schedulers() {
    type Variant = (&'static str, fn(MachineConfig) -> MachineConfig);
    let variants: [Variant; 3] = [
        ("hybrid-stm", |c| c.fallback(FallbackPolicy::HybridStm)),
        ("lazy-subscription-safe", |c| {
            c.fallback(FallbackPolicy::LazySubscriptionSafe)
        }),
        ("bounded-set", |c| c.bounded_sets(16, 8)),
    ];
    for w in workload_set(true) {
        if w.name() != "list-hi" && w.name() != "memcached" {
            continue;
        }
        let p = PreparedWorkload::new(w.as_ref());
        for mode in [Mode::Htm, Mode::Staggered] {
            for (variant, cfg) in variants {
                let tag = format!("{} ({variant})", w.name());
                let coop = run_cfg_under(&p, Scheduler::Cooperative, mode, 4, 2015, cfg);
                let thr = run_cfg_under(&p, Scheduler::Threaded, mode, 4, 2015, cfg);
                assert_identical(&coop, &thr, &tag, mode, "threaded");
                let spec = run_cfg_under(&p, Scheduler::Speculative, mode, 4, 2015, cfg);
                assert_identical(&coop, &spec, &tag, mode, "speculative");
            }
        }
    }
}

/// The same identity past the old 32-core ownership-mask boundary: the two
/// `scaling`-exhibit workloads at 64 cores, both modes, all three
/// schedulers. Kept to two workloads so the suite stays bounded.
#[test]
fn schedulers_are_bit_identical_at_64_cores() {
    for w in workload_set(true) {
        if w.name() != "list-hi" && w.name() != "memcached" {
            continue;
        }
        let p = PreparedWorkload::new(w.as_ref());
        for mode in [Mode::Htm, Mode::Staggered] {
            let coop = run_under(&p, Scheduler::Cooperative, mode, 64, 2015);
            let thr = run_under(&p, Scheduler::Threaded, mode, 64, 2015);
            assert_identical(&coop, &thr, w.name(), mode, "threaded@64");
            let spec = run_under(&p, Scheduler::Speculative, mode, 64, 2015);
            assert_identical(&coop, &spec, w.name(), mode, "speculative@64");
        }
    }
}
