//! The sweep engine's two contracts, end to end against the real
//! simulator:
//!
//! 1. **Spec round-trip** — a serialized [`RunSpec`] parses back to a
//!    configuration that simulates bit-identically (same cycles,
//!    instructions, commits).
//! 2. **Byte-identical resume** — a sweep interrupted mid-grid
//!    (`max_cells`) and then resumed produces the exact same JSON/CSV
//!    tables as an uninterrupted sweep, and the resumed invocation does
//!    zero recomputation for cached cells.

use stagger_bench::sweep::{run_sweep, sweep_csv, sweep_json, Axis, SweepSpec};
use stagger_bench::RunSpec;
use stagger_core::Mode;
use std::path::PathBuf;
use workloads::PreparedWorkload;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stagger-sweep-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn run_spec_round_trips_through_text_to_identical_cycles() {
    let mut spec = RunSpec::new("ssca2", Mode::Staggered, 4, 11);
    spec.quick = true;
    spec.machine = spec.machine.pc_tag_bits(8).small();
    spec.runtime.lock_timeout = 7_000;
    spec.runtime.min_conflict_rate = 0.25;

    let text = spec.canon();
    let parsed = RunSpec::parse(&text).expect("canonical text parses");
    assert_eq!(parsed.canon(), text, "canon is a fixed point");
    assert_eq!(parsed.run_key(), spec.run_key());

    let w = workloads::workload_by_name(&spec.workload, spec.quick).unwrap();
    let p = PreparedWorkload::new(w.as_ref());
    let a = spec.run(&p);
    let b = parsed.run(&p);
    assert_eq!(a.cycles(), b.cycles(), "parsed spec simulates identically");
    assert_eq!(a.sim_insts(), b.sim_insts());
    assert_eq!(a.out.exec.committed_txns, b.out.exec.committed_txns);
}

/// The protocol-matrix fields ride the same contract: a spec carrying a
/// non-default fallback policy or bounded read/write sets serializes,
/// parses back, and the parsed spec simulates bit-identically. A default
/// spec's canon omits the new keys entirely, so pre-protocol-matrix run
/// keys — and every sweep-cache cell addressed by them — stay valid.
#[test]
fn fallback_and_capacity_fields_round_trip_through_runs() {
    let mut base = RunSpec::new("ssca2", Mode::Htm, 4, 11);
    base.quick = true;
    let canon = base.canon();
    assert!(
        !canon.contains("fallback") && !canon.contains("max_read_lines"),
        "defaults must not serialize — old run keys would shift"
    );

    for (key, value) in [
        ("machine.fallback", "hybrid-stm"),
        ("machine.fallback", "lazy-subscription-safe"),
        ("variant", "bounded-set"),
    ] {
        let mut spec = base.clone();
        spec.set_field(key, value).expect("protocol fields apply");
        assert_ne!(
            spec.run_key(),
            base.run_key(),
            "{key}={value} forks the run key"
        );

        let text = spec.canon();
        let parsed = RunSpec::parse(&text).expect("canonical text parses");
        assert_eq!(parsed.canon(), text, "canon is a fixed point");
        assert_eq!(parsed.run_key(), spec.run_key());

        let w = workloads::workload_by_name(&spec.workload, spec.quick).unwrap();
        let p = PreparedWorkload::new(w.as_ref());
        let a = spec.run(&p);
        let b = parsed.run(&p);
        assert_eq!(a.cycles(), b.cycles(), "parsed spec simulates identically");
        assert_eq!(a.sim_insts(), b.sim_insts());
        assert_eq!(a.out.exec.committed_txns, b.out.exec.committed_txns);
    }
}

#[test]
fn interrupted_sweep_resumes_to_byte_identical_tables() {
    let mut base = RunSpec::new("ssca2", Mode::Htm, 4, 11);
    base.quick = true;
    let spec = SweepSpec {
        name: "resume-test".to_string(),
        base,
        axes: vec![
            Axis::new("mode", &["HTM", "Staggered"]),
            Axis::new("machine.pc_tag_bits", &["4", "12"]),
        ],
    };
    let grid = spec.cells().unwrap();
    assert_eq!(grid.len(), 4);

    // Uninterrupted reference run.
    let dir_a = scratch_dir("uninterrupted");
    let full = run_sweep(&spec, &dir_a, 2, None, None).unwrap();
    assert!(full.is_complete());
    assert_eq!((full.cached, full.computed), (0, 4));
    let cells_a = full.complete_cells();
    let json_a = sweep_json(&spec, &grid, &cells_a);
    let csv_a = sweep_csv(&spec, &grid, &cells_a);

    // Interrupted run: one cell per invocation, four invocations.
    let dir_b = scratch_dir("interrupted");
    for step in 0..4 {
        let partial = run_sweep(&spec, &dir_b, 2, Some(1), None).unwrap();
        assert_eq!(partial.cached, step);
        assert_eq!(partial.computed, 1);
        assert_eq!(partial.remaining, 3 - step);
        assert_eq!(partial.is_complete(), step == 3);
    }
    // The resume pass after completion recomputes nothing.
    let resumed = run_sweep(&spec, &dir_b, 2, None, None).unwrap();
    assert!(resumed.is_complete());
    assert_eq!((resumed.cached, resumed.computed), (4, 0), "100% cache hit");

    let cells_b = resumed.complete_cells();
    assert_eq!(
        sweep_json(&spec, &grid, &cells_b),
        json_a,
        "resumed JSON table is byte-identical"
    );
    assert_eq!(
        sweep_csv(&spec, &grid, &cells_b),
        csv_a,
        "resumed CSV table is byte-identical"
    );

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
