//! The tentpole invariant of the µ-op bytecode interpreter: for every
//! workload, the pre-decoded bytecode walker and the legacy tree-walking
//! reference produce *byte-identical* simulations — same per-core
//! statistics, same execution cycles, same begin/commit/abort traces,
//! same cycle-stamped observability event streams, same runtime and
//! execution counters. The interpreters may only differ in host-side
//! speed, never in what the simulated machine does.
//!
//! The same holds for the per-core line-permission cache: it is a pure
//! fast path over accesses whose ownership bits are already set, so
//! disabling it (`perm_cache_lines = 0`) must not change any simulated
//! quantity either.

use htm_sim::{Machine, MachineConfig, ObsEvent};
use stagger_bench::workload_set;
use stagger_core::{Interp, Mode, RtStats, RuntimeConfig};
use tm_interp::ExecStats;
use workloads::PreparedWorkload;

/// Everything one simulation produced: stats snapshot, traces,
/// observability event streams, thread return values, runtime counters,
/// dynamic execution counters.
type RunArtifacts = (
    htm_sim::SimStats,
    Vec<Vec<htm_sim::TraceEvent>>,
    Vec<Vec<ObsEvent>>,
    Vec<u64>,
    RtStats,
    ExecStats,
);

/// Run one prepared workload under the given interpreter and machine
/// configuration.
fn run_under(
    p: &PreparedWorkload,
    interp: Interp,
    mcfg: MachineConfig,
    mode: Mode,
    seed: u64,
) -> RunArtifacts {
    let machine = Machine::new(mcfg);
    let mut rt_cfg = RuntimeConfig::with_mode(mode);
    rt_cfg.interp = interp;
    let r = p.run_on(&machine, &rt_cfg, seed);
    (
        machine.stats(),
        machine.take_trace(),
        machine.take_events(),
        r.out.returns,
        r.out.rt,
        r.out.exec,
    )
}

fn traced(threads: usize) -> MachineConfig {
    let mut mcfg = MachineConfig::cores(threads);
    mcfg.record_trace = true;
    mcfg.record_events = true;
    mcfg
}

fn assert_identical(a: &RunArtifacts, b: &RunArtifacts, what: &str, name: &str, mode: Mode) {
    assert_eq!(
        a.0,
        b.0,
        "{name} [{}]: per-core stats diverged across {what}",
        mode.name()
    );
    assert_eq!(
        a.1,
        b.1,
        "{name} [{}]: traces diverged across {what}",
        mode.name()
    );
    assert_eq!(
        a.2,
        b.2,
        "{name} [{}]: event streams diverged across {what}",
        mode.name()
    );
    assert_eq!(
        a.3,
        b.3,
        "{name} [{}]: thread return values diverged across {what}",
        mode.name()
    );
    assert_eq!(
        a.4,
        b.4,
        "{name} [{}]: runtime counters diverged across {what}",
        mode.name()
    );
    assert_eq!(
        a.5,
        b.5,
        "{name} [{}]: execution counters diverged across {what}",
        mode.name()
    );
}

/// All ten workloads (`--quick` configs), both contended modes: the
/// bytecode and legacy interpreters must match exactly.
#[test]
fn bytecode_and_legacy_interpreters_are_bit_identical() {
    let set = workload_set(true);
    assert_eq!(set.len(), 10);
    for w in &set {
        let p = PreparedWorkload::new(w.as_ref());
        for mode in [Mode::Htm, Mode::Staggered] {
            let fast = run_under(&p, Interp::Bytecode, traced(4), mode, 2015);
            let slow = run_under(&p, Interp::Legacy, traced(4), mode, 2015);
            assert_identical(&fast, &slow, "interpreters", w.name(), mode);
        }
    }
}

/// The line-permission cache is latency-transparent: runs with the cache
/// disabled are bit-identical to runs with the default cache size.
#[test]
fn permission_cache_is_simulation_transparent() {
    let set = workload_set(true);
    for w in &set {
        let p = PreparedWorkload::new(w.as_ref());
        for mode in [Mode::Htm, Mode::Staggered] {
            let on = run_under(&p, Interp::Bytecode, traced(4), mode, 2015);
            let off = run_under(
                &p,
                Interp::Bytecode,
                traced(4).perm_cache_lines(0),
                mode,
                2015,
            );
            assert_identical(&on, &off, "permission-cache settings", w.name(), mode);
        }
    }
}
