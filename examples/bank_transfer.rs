//! Authoring a custom workload against the public API: a transactional
//! bank with hot and cold accounts.
//!
//! Most transfers move money between random ("cold") accounts and never
//! conflict; a configurable fraction also updates a global audit record —
//! the classic mixed pattern where Staggered Transactions shine: the
//! policy learns a *precise* activation on the audit line while the cold
//! transfers keep running fully speculatively.
//!
//! Run with: `cargo run --release --example bank_transfer`

use staggered_tx::htm_sim::{Machine, MachineConfig};
use staggered_tx::stagger_compiler::compile;
use staggered_tx::stagger_core::{Mode, RuntimeConfig};
use staggered_tx::tm_interp::{run_workload, ThreadPlan};
use staggered_tx::tm_ir::{FuncBuilder, FuncKind, Module};

const N_ACCOUNTS: u64 = 512;
const AUDIT_PCT: u64 = 30;
const OPS_PER_THREAD: u64 = 200;
const THREADS: usize = 8;

fn build_module() -> Module {
    let mut m = Module::new();

    // tx_transfer(accounts, audit, from, to, amount, with_audit)
    let mut b = FuncBuilder::new("tx_transfer", 6, FuncKind::Atomic { ab_id: 0 });
    let accounts = b.param(0);
    let audit = b.param(1);
    let from = b.param(2);
    let to = b.param(3);
    let amount = b.param(4);
    let with_audit = b.param(5);
    // Accounts are one line apart: index * 8 words.
    let eight = b.const_(8);
    let fo = b.mul(from, eight);
    let to_ = b.mul(to, eight);
    let bal_f = b.load_idx(accounts, fo, 0);
    let bal_t = b.load_idx(accounts, to_, 0);
    b.compute(60); // fee computation, fraud checks...
    let new_f = b.sub(bal_f, amount);
    let new_t = b.add(bal_t, amount);
    b.store_idx(new_f, accounts, fo, 0);
    b.store_idx(new_t, accounts, to_, 0);
    let do_audit = b.nei(with_audit, 0);
    b.if_(do_audit, |b| {
        // The hot line: global audit totals, updated mid-transaction
        // (regulatory bookkeeping takes a while).
        let total = b.load(audit, 0);
        let cnt = b.load(audit, 1);
        b.compute(180);
        let t2 = b.add(total, amount);
        let c2 = b.addi(cnt, 1);
        b.store(t2, audit, 0);
        b.store(c2, audit, 1);
    });
    b.ret(None);
    let tx = m.add_function(b.finish());

    // thread_main(accounts, audit, ops, n_accounts, audit_pct) -> ops
    let mut b = FuncBuilder::new("thread_main", 5, FuncKind::Normal);
    let accounts = b.param(0);
    let audit = b.param(1);
    let ops = b.param(2);
    let n_accounts = b.param(3);
    let audit_pct = b.param(4);
    let i = b.const_(0);
    b.while_(
        |b| b.lt(i, ops),
        |b| {
            // Pick distinct accounts: to = (from + 1 + rand(n-1)) % n.
            let from = b.rand(n_accounts);
            let nm1 = b.subi(n_accounts, 1);
            let step = b.rand(nm1);
            let f1 = b.addi(from, 1);
            let toraw = b.add(f1, step);
            let to = b.bin(staggered_tx::tm_ir::BinOp::Rem, toraw, n_accounts);
            let amount = b.rand_below(100);
            let coin = b.rand_below(100);
            let with_audit = b.lt(coin, audit_pct);
            b.call_void(tx, &[accounts, audit, from, to, amount, with_audit]);
            b.compute(120);
            let nx = b.addi(i, 1);
            b.assign(i, nx);
        },
    );
    b.ret(Some(i));
    m.add_function(b.finish());
    m
}

fn run(mode: Mode) -> (u64, u64, f64, u64, u64) {
    let module = build_module();
    let compiled = compile(&module);
    let machine = Machine::new(MachineConfig::cores(THREADS).small());
    let accounts = machine.host_alloc(N_ACCOUNTS * 8, true);
    for a in 0..N_ACCOUNTS {
        machine.host_store(accounts + a * 64, 1_000);
    }
    let audit = machine.host_alloc(8, true);
    let plans: Vec<ThreadPlan> = (0..THREADS)
        .map(|_| ThreadPlan {
            func: compiled.module.expect("thread_main"),
            args: vec![accounts, audit, OPS_PER_THREAD, N_ACCOUNTS, AUDIT_PCT],
        })
        .collect();
    let mut rt_cfg = RuntimeConfig::with_mode(mode);
    rt_cfg.min_conflict_rate = 0.15; // engage the policy in a short demo
    let out = run_workload(&machine, &compiled, &rt_cfg, &plans, 7);
    // Conservation of money: the fundamental serializability invariant.
    let total: u64 = (0..N_ACCOUNTS)
        .map(|a| machine.host_load(accounts + a * 64))
        .sum();
    let audited = machine.host_load(audit + 8);
    (
        total,
        audited,
        out.sim.aborts_per_commit(),
        out.sim.exec_cycles,
        out.rt.locks_acquired,
    )
}

fn main() {
    println!(
        "Transactional bank: {THREADS} threads x {OPS_PER_THREAD} transfers over {N_ACCOUNTS} accounts,"
    );
    println!("{AUDIT_PCT}% of transfers also update a global audit line mid-transaction.\n");
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>8}",
        "mode", "cycles", "abts/c", "money", "locks"
    );
    for mode in Mode::ALL {
        let (total, audited, apc, cycles, locks) = run(mode);
        assert_eq!(total, N_ACCOUNTS * 1_000, "money must be conserved");
        assert!(audited <= THREADS as u64 * OPS_PER_THREAD);
        println!(
            "{:<14} {:>12} {:>10.2} {:>12} {:>8}",
            mode.name(),
            cycles,
            apc,
            total,
            locks
        );
    }
    println!("\nMoney is conserved in every mode (serializability), and the staggered");
    println!("modes acquire advisory locks only for the audit-updating transactions.");
}
