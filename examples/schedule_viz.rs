//! Draw the paper's Figure 1 from a real run: ASCII timelines of three
//! threads executing conflicting transactions on the baseline eager HTM
//! versus with Staggered Transactions.
//!
//! Legend: `=` inside a transaction, `x` abort, `C` commit, `-` waiting on
//! an advisory lock, `L` irrevocable (global-lock) execution, `.` outside.
//!
//! Run with: `cargo run --release --example schedule_viz`

use staggered_tx::htm_sim::{trace::render_timeline_events, Machine, MachineConfig};
use staggered_tx::stagger_compiler::compile;
use staggered_tx::stagger_core::{Mode, RuntimeConfig};
use staggered_tx::tm_interp::{run_workload, ThreadPlan};
use staggered_tx::tm_ir::{FuncBuilder, FuncKind, Module};

fn build_module() -> Module {
    let mut m = Module::new();
    // A transaction whose *middle* touches the shared diamond.
    let mut b = FuncBuilder::new("tx_fig1", 2, FuncKind::Atomic { ab_id: 0 });
    let (scratch, shared) = (b.param(0), b.param(1));
    b.compute(150); // contention-free prefix
    let s0 = b.load(scratch, 0);
    let s1 = b.addi(s0, 1);
    b.store(s1, scratch, 0);
    let v = b.load(shared, 0); // the diamond
    b.compute(220);
    let v2 = b.addi(v, 1);
    b.store(v2, shared, 0);
    b.compute(60); // short tail
    b.ret(None);
    let tx = m.add_function(b.finish());

    let mut b = FuncBuilder::new("thread_main", 3, FuncKind::Normal);
    let (scratch, shared, rounds) = (b.param(0), b.param(1), b.param(2));
    let i = b.const_(0);
    b.while_(
        |b| b.lt(i, rounds),
        |b| {
            b.call_void(tx, &[scratch, shared]);
            b.compute(100);
            let nx = b.addi(i, 1);
            b.assign(i, nx);
        },
    );
    b.ret(Some(i));
    m.add_function(b.finish());
    m
}

fn run_and_render(mode: Mode, rounds: u64) -> (String, u64, u64) {
    let module = build_module();
    let compiled = compile(&module);
    let mut mcfg = MachineConfig::cores(3).small();
    mcfg.record_events = true;
    let machine = Machine::new(mcfg);
    let shared = machine.host_alloc(8, true);
    let plans: Vec<ThreadPlan> = (0..3)
        .map(|_| {
            let scratch = machine.host_alloc(8, true);
            ThreadPlan {
                func: compiled.module.expect("thread_main"),
                args: vec![scratch, shared, rounds],
            }
        })
        .collect();
    let mut rt_cfg = RuntimeConfig::with_mode(mode);
    rt_cfg.min_conflict_rate = 0.15;
    let out = run_workload(&machine, &compiled, &rt_cfg, &plans, 5);
    let timeline = render_timeline_events(&machine.take_events(), 72);
    (timeline, out.sim.aggregate().aborts(), out.sim.exec_cycles)
}

fn main() {
    let rounds = 10;
    println!("Figure 1, drawn from a real run (3 threads x {rounds} transactions).");
    println!(
        "Legend: '=' in transaction, 'x' abort, 'C' commit, '-' lock wait, 'L' irrevocable, '.' outside.\n"
    );

    let (t1, aborts1, cyc1) = run_and_render(Mode::Htm, rounds);
    println!("(a) eager HTM — {aborts1} aborts, {cyc1} cycles");
    println!("{t1}");

    let (t2, aborts2, cyc2) = run_and_render(Mode::Staggered, rounds);
    println!("(c) Staggered Transactions — {aborts2} aborts, {cyc2} cycles");
    println!("{t2}");

    println!("In (c), once the policy activates, the conflicting portions take the");
    println!("advisory lock in turn: the x's disappear and commits stagger — the");
    println!("schedule of the paper's Figure 1c.");
}
