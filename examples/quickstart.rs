//! Quickstart: the paper's Figure 1 in miniature.
//!
//! Three simulated threads run transactions that all update the same shared
//! datum partway through the transaction. On the baseline eager HTM, the
//! conflicting portions overlap and transactions keep aborting each other;
//! with Staggered Transactions, the runtime learns the conflict pattern and
//! serializes just the conflicting suffix behind an advisory lock, so all
//! three commit.
//!
//! Run with: `cargo run --release --example quickstart`

use staggered_tx::htm_sim::{Machine, MachineConfig};
use staggered_tx::stagger_compiler::compile;
use staggered_tx::stagger_core::{Mode, RuntimeConfig};
use staggered_tx::tm_interp::{run_workload, ThreadPlan};
use staggered_tx::tm_ir::{FuncBuilder, FuncKind, Module};

/// An atomic block with a contention-free prefix (private scratch work)
/// followed by a conflicting suffix (updating shared statistics) — the
/// shape of Figure 1's transactions, with the diamond in the middle.
fn build_module() -> Module {
    let mut m = Module::new();

    // tx_work(scratch, stats): long private prefix, conflicting suffix.
    let mut b = FuncBuilder::new("tx_work", 2, FuncKind::Atomic { ab_id: 0 });
    let (scratch, stats) = (b.param(0), b.param(1));
    // Prefix: 20 updates to thread-private scratch (never conflicts).
    let i = b.const_(0);
    let n = b.const_(20);
    b.while_(
        |b| b.lt(i, n),
        |b| {
            let v = b.load_idx(scratch, i, 0);
            let v2 = b.addi(v, 1);
            b.store_idx(v2, scratch, i, 0);
            b.compute(15);
            let nx = b.addi(i, 1);
            b.assign(i, nx);
        },
    );
    // Suffix: the shared update every thread performs (the diamond), with
    // a wide window between the read and the write.
    let s = b.load(stats, 0);
    b.compute(250);
    let s2 = b.addi(s, 1);
    b.store(s2, stats, 0);
    b.ret(None);
    let tx = m.add_function(b.finish());

    // thread_main(scratch, stats, rounds)
    let mut b = FuncBuilder::new("thread_main", 3, FuncKind::Normal);
    let (scratch, stats, rounds) = (b.param(0), b.param(1), b.param(2));
    let i = b.const_(0);
    b.while_(
        |b| b.lt(i, rounds),
        |b| {
            b.call_void(tx, &[scratch, stats]);
            let nx = b.addi(i, 1);
            b.assign(i, nx);
        },
    );
    b.ret(Some(i));
    m.add_function(b.finish());
    m
}

fn run(mode: Mode, rounds: u64) -> (u64, f64, u64, u64) {
    let module = build_module();
    let compiled = compile(&module);
    let machine = Machine::new(MachineConfig::cores(3).small());
    let stats = machine.host_alloc(8, true);
    let plans: Vec<ThreadPlan> = (0..3)
        .map(|_| {
            let scratch = machine.host_alloc(32, true); // private per thread
            ThreadPlan {
                func: compiled.module.expect("thread_main"),
                args: vec![scratch, stats, rounds],
            }
        })
        .collect();
    let mut rt_cfg = RuntimeConfig::with_mode(mode);
    // The default activation gate is tuned for long benchmark runs; for
    // this short demo, let the policy engage at lower conflict frequency.
    rt_cfg.min_conflict_rate = 0.15;
    let out = run_workload(&machine, &compiled, &rt_cfg, &plans, 1);
    let agg = out.sim.aggregate();
    (
        machine.host_load(stats),
        out.sim.aborts_per_commit(),
        out.sim.exec_cycles,
        agg.aborts(),
    )
}

fn main() {
    let rounds = 60;
    println!("Figure 1 in miniature: 3 threads x {rounds} transactions, each with a");
    println!("contention-free prefix and a conflicting suffix on one shared line.\n");

    let (v1, apc1, cyc1, ab1) = run(Mode::Htm, rounds);
    let (v2, apc2, cyc2, ab2) = run(Mode::Staggered, rounds);

    println!("                      eager HTM      Staggered");
    println!(
        "final counter       {v1:>11}    {v2:>11}   (both exactly {} - serializable)",
        3 * rounds
    );
    println!("aborts              {ab1:>11}    {ab2:>11}");
    println!("aborts/commit       {apc1:>11.2}    {apc2:>11.2}");
    println!("execution cycles    {cyc1:>11}    {cyc2:>11}");
    println!();
    assert_eq!(v1, 3 * rounds);
    assert_eq!(v2, 3 * rounds);
    if ab2 < ab1 {
        println!(
            "Staggered Transactions eliminated {:.0}% of the aborts by serializing",
            (1.0 - ab2 as f64 / ab1 as f64) * 100.0
        );
        println!("only the conflicting suffixes (t1 acquires the advisory lock, t2 and");
        println!("t3 wait their turn, and all commit — Figure 1c).");
    }
}
