//! Compiler explorer: reproduce the paper's Figure 3 walk-through.
//!
//! Builds the genome-style atomic block (`vector_at` + `hashtable_insert` +
//! chain search), runs Data Structure Analysis and the Staggered
//! Transactions compiler pass over it, and prints the instrumented
//! disassembly plus the unified anchor table — anchors, pioneers, parents,
//! PCs and 12-bit tags.
//!
//! Run with: `cargo run --release --example anchor_inspection`

use staggered_tx::stagger_compiler::compile;
use staggered_tx::tm_ir::{self, CodeLayout, FuncBuilder, FuncKind, Module};

fn genome_like() -> Module {
    let mut m = Module::new();

    // TMlist_find(list, key): walk the sorted bucket chain. — lib/list.c
    let mut b = FuncBuilder::new("TMlist_find", 2, FuncKind::Normal);
    let (list, key) = (b.param(0), b.param(1));
    let node = b.load(list, 0);
    b.while_(
        |b| b.nei(node, 0),
        |b| {
            let k = b.load(node, 0);
            let _found = b.eq(k, key);
            let nx = b.load(node, 1);
            b.assign(node, nx);
        },
    );
    b.ret(Some(node));
    let list_find = m.add_function(b.finish());

    // TMhashtable_insert(ht, key) — lib/hashtable.c
    let mut b = FuncBuilder::new("TMhashtable_insert", 2, FuncKind::Normal);
    let (ht, key) = (b.param(0), b.param(1));
    let nb = b.load(ht, 0); // hashtablePtr->numBucket
    let i = b.bin(tm_ir::BinOp::Rem, key, nb);
    let bucket = b.load_idx(ht, i, 1); // hashtablePtr->buckets[i]
    let r = b.call(list_find, &[bucket, key]);
    b.ret(Some(r));
    let ht_insert = m.add_function(b.finish());

    // vector_at(vec, i) — lib/vector.c:164
    let mut b = FuncBuilder::new("vector_at", 2, FuncKind::Normal);
    let (vec, i) = (b.param(0), b.param(1));
    let sz = b.load(vec, 0); // vectorPtr->size
    let oob = b.ge(i, sz);
    b.if_(oob, |b| b.ret_const(0));
    let v = b.load_idx(vec, i, 1); // vectorPtr->elements[i]
    b.ret(Some(v));
    let vector_at = m.add_function(b.finish());

    // The atomic block — genome/sequencer.c:292
    let mut b = FuncBuilder::new("tx_insert_segments", 4, FuncKind::Atomic { ab_id: 0 });
    let (ht, vec) = (b.param(0), b.param(1));
    let ii = b.mov(b.param(2));
    let stop = b.param(3);
    b.while_(
        |b| b.lt(ii, stop),
        |b| {
            let seg = b.call(vector_at, &[vec, ii]);
            b.call_void(ht_insert, &[ht, seg]);
            let nx = b.addi(ii, 1);
            b.assign(ii, nx);
        },
    );
    b.ret(None);
    m.add_function(b.finish());
    m
}

fn main() {
    let module = genome_like();
    let compiled = compile(&module);

    println!("=== instrumented disassembly ===============================\n");
    print!("{}", tm_ir::display::format_module(&compiled.module));

    println!("=== compile statistics =====================================\n");
    println!(
        "loads/stores analyzed: {}   instrumented as anchors: {} ({:.0}%)",
        compiled.stats.loads_stores,
        compiled.stats.anchors,
        compiled.stats.anchor_fraction() * 100.0
    );

    println!("\n=== unified anchor table for atomic block 0 (cf. Figure 3) ==\n");
    let t = compiled.table(0);
    println!(
        "{:<6} {:>10} {:>6} {:>8} {:>8} {:>8}  in function",
        "kind", "pc", "tag", "anchor", "pioneer", "parent"
    );
    for e in &t.entries {
        let func = &compiled.module.func(e.inst.func).name;
        if e.is_anchor {
            println!(
                "{:<6} {:>#10x} {:>#6x} {:>8} {:>8} {:>8}  {}",
                "ANCHOR",
                e.pc,
                CodeLayout::truncate_pc(e.pc),
                e.anchor_id,
                "-",
                if e.parent_anchor == 0 {
                    "0".to_string()
                } else {
                    format!("#{}", e.parent_anchor)
                },
                func
            );
        } else {
            println!(
                "{:<6} {:>#10x} {:>#6x} {:>8} {:>8} {:>8}  {}",
                "",
                e.pc,
                CodeLayout::truncate_pc(e.pc),
                "-",
                format!("#{}", e.anchor_id),
                "-",
                func
            );
        }
    }

    println!();
    println!("Reading the table: the chain-walk anchor inside TMlist_find has the");
    println!("TMhashtable_insert anchor as its *parent* — the locking-promotion");
    println!("target that lets the policy escalate from one bucket chain to the");
    println!("whole table, breaking cross-bucket conflict cycles (paper Section 5.2).");
}
