//! # staggered-tx — facade crate
//!
//! Re-exports the public API of the Staggered Transactions reproduction
//! (SPAA 2015, Xiang & Scott, "Conflict Reduction in Hardware Transactions
//! Using Advisory Locks"). See `README.md` for the architecture overview and
//! `DESIGN.md` for the per-experiment index.
//!
//! The crates compose like the paper's toolchain:
//! `tm_ir` (write the program) → `stagger_compiler` (insert ALPs) →
//! `tm_interp` (execute on `htm_sim` with the `stagger_core` policy).

pub use htm_sim;
pub use stagger_compiler;
pub use stagger_core;
pub use tm_dsa;
pub use tm_interp;
pub use tm_ir;
pub use workloads;
